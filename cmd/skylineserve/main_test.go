package main

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestShutdownDrainsInflight: a request already executing when shutdown
// begins runs to completion and its response reaches the client; the
// listener refuses new connections meanwhile.
func TestShutdownDrainsInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var completed atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		completed.Store(true)
		io.WriteString(w, "drained")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	type reply struct {
		body string
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			got <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- reply{body: string(b), err: err}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	shutDone := make(chan error, 1)
	go func() { shutDone <- shutdown(srv, 10*time.Second, log) }()

	// Shutdown closes the listener first; once new connections are refused
	// the in-flight request must still be live.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting long after shutdown started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-shutDone:
		t.Fatalf("shutdown returned %v with a request still in flight", err)
	default:
	}

	close(release)
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request got (%q, %v), want the full response", r.body, r.err)
	}
	if !completed.Load() {
		t.Fatal("handler did not run to completion")
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestShutdownTimeoutForcesClose: a handler that outlives the timeout is
// abandoned — shutdown returns context.DeadlineExceeded instead of
// hanging, which is what the -shutdown-timeout flag bounds.
func TestShutdownTimeoutForcesClose(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	go http.Get("http://" + ln.Addr().String() + "/stuck")
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	start := time.Now()
	err = shutdown(srv, 50*time.Millisecond, log)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v, want roughly the 50ms timeout", elapsed)
	}
}
