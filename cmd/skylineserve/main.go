// Command skylineserve serves multi-source skyline queries over HTTP,
// with the engine pool's runtime metrics and Go's profiling endpoints
// alongside — the observability front end of the engine.
//
// The network is either read from a roadnet file (-net) or generated from
// a paper preset (-preset); objects are generated at the given density.
// Queries run on a Pool of engine clones, so concurrent requests are
// served in parallel and cancelled requests abort their expansions.
//
// Endpoints:
//
//	GET /query?q=x,y&q=x,y[&alg=CE|EDC|LBC][&attrs=1][&alternate=1][&source=i][&phases=1][&trace=0|1]
//	    Answer one skyline query; points snap to the nearest road.
//	    phases=1 adds the per-phase work breakdown to the stats;
//	    trace=0|1 overrides -trace for this request (a traced response
//	    carries its trace_id).
//	GET /metrics      Pool metrics, Prometheus text exposition format,
//	    including the per-algorithm/outcome query duration histograms
//	    and the roadskyline_build_info gauge.
//	GET /healthz      Liveness probe with worker/occupancy counts, the
//	    build version and the process uptime.
//	GET /debug/queries[?alg=&outcome=&slowest=&limit=&format=text]
//	    The query flight recorder's retained per-query records (JSON by
//	    default): sampled traffic plus the slowest and every failed query,
//	    with full per-phase breakdowns and trace spans.
//	GET /debug/trace?id=tXXXXXXXX
//	    One traced query's span breakdown as Chrome trace-event JSON
//	    (open in Perfetto or chrome://tracing); without id, an index of
//	    the retained traced records.
//	GET /debug/inflight
//	    Live view of the queries running right now: phase, nodes
//	    expanded, wavefront role, and the leader blocked on.
//	GET /debug/wavefronts
//	    Shared-wavefront lineage: who led each shared expansion, which
//	    traces subscribed and how long each blocked.
//	GET /debug/load[?history=N]
//	    Live load view: rolling 1s/10s/60s windows of TPS, latency
//	    quantiles, outcome and cache-hit rates, plus the latest Go
//	    runtime sample (and up to N retained samples with history=N).
//	GET /debug/vars   expvar JSON, including the pool snapshot.
//	GET /debug/pprof  Go profiling endpoints.
//
// Usage:
//
//	skylineserve -preset CA -omega 0.5 -addr :8080
//	skylineserve -preset CA -smoke        # self-test: query + scrape, then exit
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"roadskyline"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		netFile = flag.String("net", "", "roadnet file to load")
		preset  = flag.String("preset", "CA", "paper preset when -net is not given: CA, AU or NA")
		omega   = flag.Float64("omega", 0.5, "object density |D|/|E|")
		attrs   = flag.Int("attrs", 0, "number of random non-spatial attributes per object")
		seed    = flag.Int64("seed", 1, "random seed for generated objects")
		workers = flag.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "admission queue depth beyond the workers (0 = 4x workers)")
		slow    = flag.Duration("slow-query", time.Second, "log queries slower than this with their phase breakdown at Warn (default 1s; 0 disables)")
		logLvl  = flag.String("log-level", "info", "log level: debug (per-request and per-trace-event records), info, warn or error")
		flight  = flag.Int("flight", 512, "flight recorder retention: per-query records kept in each of the sampled and errored reservoirs (0 disables /debug/queries)")
		flSlow  = flag.Int("flight-slow", 32, "flight recorder slowest-query reservoir size")
		flEvery = flag.Int("flight-sample", 1, "flight recorder sampling stride: record every k-th query in the sampled reservoir (slow and errored queries are always kept)")
		trace   = flag.Bool("trace", true, "give queries causal traces: trace IDs in responses, /debug/inflight and /debug/trace exports (per-request override: ?trace=0|1)")
		loadWin = flag.Bool("load-window", true, "maintain the rolling load window (1s/10s/60s TPS, latency quantiles, outcome rates) behind /debug/load and the roadskyline_load_* metrics")
		rtEvery = flag.Duration("runtime-sample", 5*time.Second, "Go runtime sampling interval for the roadskyline_runtime_* metrics (0 disables)")
		report  = flag.Duration("report-interval", 0, "log a one-line load summary (TPS, p99, in-flight, heap) at this interval; 0 disables, requires -load-window")
		shutTO  = flag.Duration("shutdown-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests before forcing the listener closed")
		smoke   = flag.Bool("smoke", false, "self-test: start, run one query and scrape /metrics, /debug/queries and /debug/trace over HTTP, then exit")
		smokeTr = flag.String("smoke-trace-out", "", "with -smoke: also write the smoke query's exported Chrome trace-event JSON to this file")
	)
	flag.Parse()

	level, err := parseLogLevel(*logLvl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	network, err := loadNetwork(*netFile, *preset)
	if err != nil {
		log.Error("loading network", "err", err)
		os.Exit(1)
	}
	objects := network.GenerateObjects(*omega, *attrs, *seed)
	eng, err := roadskyline.NewEngine(network, objects, roadskyline.EngineConfig{
		WarmCache: true,
		FlightRecorder: roadskyline.FlightRecorderConfig{
			Size:        *flight,
			SlowN:       *flSlow,
			SampleEvery: *flEvery,
		},
	})
	if err != nil {
		log.Error("building engine", "err", err)
		os.Exit(1)
	}
	pool, err := roadskyline.NewPool(eng, roadskyline.PoolConfig{
		Workers: *workers, QueueDepth: *queue,
		Window: *loadWin, RuntimeSample: *rtEvery,
	})
	if err != nil {
		log.Error("building pool", "err", err)
		os.Exit(1)
	}
	defer pool.Close()

	s := &server{net: network, pool: pool, log: log, slow: *slow, trace: *trace, start: time.Now()}
	expvar.Publish("roadskyline.pool", pool.ExpvarFunc())

	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.Handle("/metrics", pool.MetricsHandler())
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/debug/queries", pool.FlightHandler())
	mux.Handle("/debug/trace", pool.TraceHandler())
	mux.Handle("/debug/inflight", pool.InflightHandler())
	mux.Handle("/debug/wavefronts", pool.LineageHandler())
	mux.Handle("/debug/load", pool.LoadHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listening", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: mux}
	log.Info("serving", "addr", ln.Addr().String(),
		"nodes", network.NumNodes(), "edges", network.NumEdges(),
		"objects", len(objects), "workers", pool.Workers())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	if *report > 0 {
		if !*loadWin {
			log.Warn("-report-interval needs -load-window; periodic reports disabled")
		} else {
			stopReport := make(chan struct{})
			defer close(stopReport)
			go reportLoop(pool, log, *report, stopReport)
		}
	}

	if *smoke {
		if err := runSmoke(log, ln.Addr().String(), *smokeTr); err != nil {
			log.Error("smoke test failed", "err", err)
			os.Exit(1)
		}
		shutdown(srv, *shutTO, log)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Info("shutting down", "timeout", *shutTO)
		if err := shutdown(srv, *shutTO, log); err != nil {
			os.Exit(1)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("serving", "err", err)
			os.Exit(1)
		}
	}
}

// reportLoop logs a one-line load summary at each tick so operators can
// tail the log without a Prometheus stack: current TPS and tail latency
// from the rolling 10s window, live occupancy, and heap/goroutines from
// the runtime sampler when enabled.
func reportLoop(pool *roadskyline.Pool, log *slog.Logger, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		m := pool.PoolMetrics()
		if len(m.Load) < 2 {
			continue
		}
		v := m.Load[1] // the 10s view: smoothed but current
		args := []any{
			"tps", v.TPS,
			"p99", v.P99,
			"served", v.Served,
			"errors", v.Errors,
			"saturated", v.Saturated,
			"in_flight", m.InFlight,
			"waiting", m.Waiting,
		}
		if m.Runtime != nil {
			args = append(args, "heap_mb", float64(m.Runtime.HeapBytes)/(1<<20),
				"goroutines", m.Runtime.Goroutines)
		}
		log.Info("load", args...)
	}
}

// shutdown drains the server gracefully: in-flight requests get up to
// timeout to complete (on a fresh context, deliberately detached from
// the already-cancelled signal context) before the listener is forced
// closed.
func shutdown(srv *http.Server, timeout time.Duration, log *slog.Logger) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("shutdown", "err", err)
		return err
	}
	return nil
}

type server struct {
	net   *roadskyline.Network
	pool  *roadskyline.Pool
	log   *slog.Logger
	slow  time.Duration
	trace bool
	start time.Time
}

// queryResponse is the /query JSON body. Durations inside Stats marshal
// as nanoseconds (Go's default for time.Duration).
type queryResponse struct {
	Algorithm string            `json:"algorithm"`
	TraceID   string            `json:"trace_id,omitempty"`
	Points    []responsePoint   `json:"points"`
	Stats     roadskyline.Stats `json:"stats"`
}

type responsePoint struct {
	ID        int32     `json:"id"`
	X         float64   `json:"x"`
	Y         float64   `json:"y"`
	Distances []float64 `json:"distances"`
	Attrs     []float64 `json:"attrs,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	vals := r.URL.Query()

	var locs []roadskyline.Location
	for _, spec := range vals["q"] {
		pt, err := parsePoint(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad query point %q: %v", spec, err))
			return
		}
		loc, err := s.net.NearestLocation(pt)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("snapping %q: %v", spec, err))
			return
		}
		locs = append(locs, loc)
	}
	if len(locs) == 0 {
		httpError(w, http.StatusBadRequest, "need at least one q=x,y query point")
		return
	}

	alg, err := parseAlg(vals.Get("alg"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	source := 0
	if v := vals.Get("source"); v != "" {
		if source, err = strconv.Atoi(v); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad source %q", v))
			return
		}
	}
	traced := s.trace
	if v := vals.Get("trace"); v != "" {
		traced = boolParam(v)
	}
	q := roadskyline.Query{
		Points:        locs,
		Algorithm:     alg,
		UseAttrs:      boolParam(vals.Get("attrs")),
		Alternate:     boolParam(vals.Get("alternate")),
		Source:        source,
		CollectPhases: boolParam(vals.Get("phases")),
		Trace:         traced,
	}
	if s.slow > 0 || s.log.Enabled(r.Context(), slog.LevelDebug) {
		q.Tracer = roadskyline.NewSlogTracer(s.log, s.slow)
	}

	res, err := s.pool.Skyline(r.Context(), q)
	switch {
	case err == nil:
	case errors.Is(err, roadskyline.ErrPoolSaturated):
		httpError(w, http.StatusServiceUnavailable, "pool saturated, retry later")
		return
	case errors.Is(err, roadskyline.ErrPoolClosed):
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return // client went away; nothing to answer
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	out := queryResponse{Algorithm: alg.String(), TraceID: res.TraceID, Points: make([]responsePoint, len(res.Points)), Stats: res.Stats}
	for i, p := range res.Points {
		pt := s.net.PointOf(p.Object.Loc)
		out.Points[i] = responsePoint{
			ID: p.Object.ID, X: pt.X, Y: pt.Y,
			Distances: p.Distances, Attrs: p.Object.Attrs,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.log.Debug("writing response", "err", err)
	}
	s.log.Debug("query served", "alg", alg.String(), "points", len(locs),
		"skyline", len(res.Points), "elapsed", time.Since(start))
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := s.pool.PoolMetrics()
	version, goVersion := roadskyline.BuildInfo()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"workers":   m.Workers,
		"inFlight":  m.InFlight,
		"served":    m.Served,
		"version":   version,
		"goVersion": goVersion,
		"uptime":    time.Since(s.start).String(),
	})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func parsePoint(spec string) (roadskyline.Point, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return roadskyline.Point{}, fmt.Errorf("want x,y")
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return roadskyline.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return roadskyline.Point{}, err
	}
	return roadskyline.Point{X: x, Y: y}, nil
}

func parseAlg(name string) (roadskyline.Algorithm, error) {
	switch strings.ToUpper(name) {
	case "", "LBC":
		return roadskyline.LBCAlg, nil
	case "CE":
		return roadskyline.CEAlg, nil
	case "EDC":
		return roadskyline.EDCAlg, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want CE, EDC or LBC)", name)
}

func boolParam(v string) bool {
	b, err := strconv.ParseBool(v)
	return err == nil && b
}

func parseLogLevel(name string) (slog.Level, error) {
	switch strings.ToLower(name) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", name)
}

// runSmoke exercises the serving path end to end through real HTTP: a
// liveness probe, one traced skyline query, a metrics scrape and the
// trace export. When traceOut is non-empty the exported Chrome
// trace-event JSON is also written there (CI uploads it as an artifact).
func runSmoke(log *slog.Logger, addr, traceOut string) error {
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	if _, err := fetch(client, base+"/healthz"); err != nil {
		return err
	}
	body, err := fetch(client, base+"/query?q=0.2,0.3&q=0.7,0.7&alg=LBC&phases=1&trace=1")
	if err != nil {
		return err
	}
	var res queryResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return fmt.Errorf("decoding /query response: %w", err)
	}
	if len(res.Points) == 0 {
		return fmt.Errorf("smoke query returned an empty skyline")
	}
	if res.TraceID == "" {
		return fmt.Errorf("smoke query response carries no trace_id")
	}
	log.Info("smoke query ok", "skyline", len(res.Points), "trace", res.TraceID,
		"phases", len(res.Stats.Phases), "total", res.Stats.Total)

	metrics, err := fetch(client, base+"/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"roadskyline_build_info{version=",
		"roadskyline_pool_workers",
		"roadskyline_pool_queries_total{outcome=\"served\"} 1",
		"roadskyline_query_duration_seconds_bucket{alg=\"LBC\",outcome=\"served\",le=\"+Inf\"} 1",
		"roadskyline_flight_queries_total{outcome=\"served\"} 1",
		"roadskyline_load_tps{window=\"10s\"}",
		"roadskyline_runtime_heap_bytes ",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	log.Info("smoke metrics ok", "bytes", len(metrics))

	trace, err := fetch(client, base+"/debug/trace?id="+res.TraceID)
	if err != nil {
		return err
	}
	var events struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &events); err != nil {
		return fmt.Errorf("decoding /debug/trace response: %w", err)
	}
	if len(events.TraceEvents) == 0 {
		return fmt.Errorf("/debug/trace exported no events: %s", trace)
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, trace, 0o644); err != nil {
			return fmt.Errorf("writing -smoke-trace-out: %w", err)
		}
	}
	log.Info("smoke trace export ok", "trace", res.TraceID, "events", len(events.TraceEvents))

	inflight, err := fetch(client, base+"/debug/inflight")
	if err != nil {
		return err
	}
	if !strings.Contains(string(inflight), "\"queries\"") {
		return fmt.Errorf("/debug/inflight malformed: %s", inflight)
	}
	if _, err := fetch(client, base+"/debug/wavefronts"); err != nil {
		return err
	}

	load, err := fetch(client, base+"/debug/load")
	if err != nil {
		return err
	}
	var loadResp struct {
		Enabled bool             `json:"enabled"`
		Windows []map[string]any `json:"windows"`
		Runtime map[string]any   `json:"runtime"`
	}
	if err := json.Unmarshal(load, &loadResp); err != nil {
		return fmt.Errorf("decoding /debug/load response: %w", err)
	}
	if !loadResp.Enabled || len(loadResp.Windows) != 3 || loadResp.Runtime == nil {
		return fmt.Errorf("/debug/load incomplete: %s", load)
	}
	log.Info("smoke load view ok", "windows", len(loadResp.Windows))

	body, err = fetch(client, base+"/debug/queries?slowest=10")
	if err != nil {
		return err
	}
	var flights struct {
		Enabled bool                       `json:"enabled"`
		Seen    uint64                     `json:"seen"`
		Records []roadskyline.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(body, &flights); err != nil {
		return fmt.Errorf("decoding /debug/queries response: %w", err)
	}
	if !flights.Enabled || flights.Seen == 0 || len(flights.Records) == 0 {
		return fmt.Errorf("/debug/queries did not retain the smoke query: %s", body)
	}
	if len(flights.Records[0].Phases) == 0 {
		return fmt.Errorf("/debug/queries record lacks the phase breakdown: %s", body)
	}
	log.Info("smoke flight recorder ok", "seen", flights.Seen, "retained", len(flights.Records))
	return nil
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}

func loadNetwork(path, preset string) (*roadskyline.Network, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return roadskyline.ReadNetwork(f)
	}
	switch preset {
	case "CA":
		return roadskyline.Generate(roadskyline.CA)
	case "AU":
		return roadskyline.Generate(roadskyline.AU)
	case "NA":
		return roadskyline.Generate(roadskyline.NA)
	}
	return nil, fmt.Errorf("unknown preset %q (want CA, AU or NA)", preset)
}
