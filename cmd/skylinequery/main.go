// Command skylinequery answers one multi-source skyline query over a road
// network from the command line.
//
// The network is either read from a roadnet file (-net) or generated from a
// paper preset (-preset). Objects are generated at the given density;
// query points are given as x,y coordinates (snapped to the nearest road)
// or generated inside a random sub-region.
//
// Usage:
//
//	skylinequery -preset CA -omega 0.5 -q 0.2,0.3 -q 0.7,0.7 -alg LBC
//	skylinequery -net na.roadnet -omega 0.2 -numq 4 -alg all -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"roadskyline"
)

type pointList []roadskyline.Point

func (p *pointList) String() string { return fmt.Sprint(*p) }

func (p *pointList) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return fmt.Errorf("want x,y")
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return err
	}
	*p = append(*p, roadskyline.Point{X: x, Y: y})
	return nil
}

func main() {
	var queryPts pointList
	var (
		netFile = flag.String("net", "", "roadnet file to load")
		preset  = flag.String("preset", "CA", "paper preset when -net is not given: CA, AU or NA")
		omega   = flag.Float64("omega", 0.5, "object density |D|/|E|")
		attrs   = flag.Int("attrs", 0, "number of random non-spatial attributes per object")
		numQ    = flag.Int("numq", 0, "generate this many query points (when no -q given)")
		algName = flag.String("alg", "LBC", "algorithm: CE, EDC, LBC or all")
		seed    = flag.Int64("seed", 1, "random seed for objects and generated query points")
		verbose = flag.Bool("v", false, "print every skyline point")
		svgOut  = flag.String("svg", "", "write an SVG visualization of the last run to this file")
	)
	flag.Var(&queryPts, "q", "query point as x,y (repeatable)")
	flag.Parse()

	net, err := loadNetwork(*netFile, *preset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylinequery: %v\n", err)
		os.Exit(1)
	}
	objects := net.GenerateObjects(*omega, *attrs, *seed)
	eng, err := roadskyline.NewEngine(net, objects, roadskyline.EngineConfig{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylinequery: %v\n", err)
		os.Exit(1)
	}

	var locs []roadskyline.Location
	for _, p := range queryPts {
		loc, err := net.NearestLocation(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylinequery: %v\n", err)
			os.Exit(1)
		}
		locs = append(locs, loc)
	}
	if len(locs) == 0 {
		k := *numQ
		if k == 0 {
			k = 3
		}
		locs = net.GenerateQueryPoints(k, 0.1, *seed)
	}

	var algorithms []roadskyline.Algorithm
	switch strings.ToUpper(*algName) {
	case "CE":
		algorithms = []roadskyline.Algorithm{roadskyline.CEAlg}
	case "EDC":
		algorithms = []roadskyline.Algorithm{roadskyline.EDCAlg}
	case "LBC":
		algorithms = []roadskyline.Algorithm{roadskyline.LBCAlg}
	case "ALL":
		algorithms = []roadskyline.Algorithm{roadskyline.CEAlg, roadskyline.EDCAlg, roadskyline.LBCAlg}
	default:
		fmt.Fprintf(os.Stderr, "skylinequery: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	fmt.Printf("network: %d nodes, %d edges; objects: %d; query points: %d\n",
		net.NumNodes(), net.NumEdges(), len(objects), len(locs))
	var lastResult *roadskyline.Result
	for _, alg := range algorithms {
		res, err := eng.Skyline(roadskyline.Query{
			Points:    locs,
			UseAttrs:  *attrs > 0,
			Algorithm: alg,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylinequery: %v\n", err)
			os.Exit(1)
		}
		lastResult = res
		s := res.Stats
		fmt.Printf("%-4s: %3d skyline points | candidates %5d | network pages %6d | nodes %7d | total %8v | first %8v\n",
			alg, len(res.Points), s.Candidates, s.NetworkPages, s.NodesExpanded, s.Total.Round(10e3), s.Initial.Round(10e3))
		if *verbose {
			for _, p := range res.Points {
				pt := net.PointOf(p.Object.Loc)
				fmt.Printf("  object %4d at (%.3f, %.3f)  dists %v", p.Object.ID, pt.X, pt.Y, fmtVec(p.Distances))
				if len(p.Object.Attrs) > 0 {
					fmt.Printf("  attrs %v", fmtVec(p.Object.Attrs))
				}
				fmt.Println()
			}
		}
	}
	if *svgOut != "" && lastResult != nil {
		f, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylinequery: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := roadskyline.WriteQueryPlot(f, net, objects, locs, lastResult); err != nil {
			fmt.Fprintf(os.Stderr, "skylinequery: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}

func loadNetwork(path, preset string) (*roadskyline.Network, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return roadskyline.ReadNetwork(f)
	}
	switch preset {
	case "CA":
		return roadskyline.Generate(roadskyline.CA)
	case "AU":
		return roadskyline.Generate(roadskyline.AU)
	case "NA":
		return roadskyline.Generate(roadskyline.NA)
	}
	return nil, fmt.Errorf("unknown preset %q (want CA, AU or NA)", preset)
}

func fmtVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
