// Command roadconv converts road networks from the classic cnode/cedge
// distribution format (used by the spatial-database datasets the paper
// evaluates on) into the roadnet text format, optionally normalizing
// coordinates into the unit square as the paper does.
//
// Usage:
//
//	roadconv -cnode CA.cnode -cedge CA.cedge -normalize -out ca.roadnet
package main

import (
	"flag"
	"fmt"
	"os"

	"roadskyline"
)

func main() {
	var (
		cnode     = flag.String("cnode", "", "node file: <id> <x> <y> per line")
		cedge     = flag.String("cedge", "", "edge file: <id> <u> <v> <length> per line")
		normalize = flag.Bool("normalize", false, "scale coordinates into the unit square")
		out       = flag.String("out", "", "output roadnet file (default stdout)")
	)
	flag.Parse()
	if *cnode == "" || *cedge == "" {
		fmt.Fprintln(os.Stderr, "roadconv: -cnode and -cedge are required")
		os.Exit(2)
	}
	nf, err := os.Open(*cnode)
	if err != nil {
		fatal(err)
	}
	defer nf.Close()
	ef, err := os.Open(*cedge)
	if err != nil {
		fatal(err)
	}
	defer ef.Close()

	net, err := roadskyline.ReadCnodeCedge(nf, ef)
	if err != nil {
		fatal(err)
	}
	if *normalize {
		net = net.NormalizeToUnitSquare()
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := net.Write(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "roadconv: %d nodes, %d edges, connected=%v\n",
		net.NumNodes(), net.NumEdges(), net.Connected())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "roadconv: %v\n", err)
	os.Exit(1)
}
