package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"roadskyline"
)

// smallConfig is a fast in-process closed-loop run for tests.
func smallConfig() *config {
	return &config{
		preset: "CA", scale: 0.05, seed: 7, omega: 0.5, attrs: 1,
		workers: 2, cache: 256, share: true,
		mode: "closed", concurrency: 2,
		duration: 500 * time.Millisecond, warmup: 100 * time.Millisecond,
		alg: "LBC", points: 2, geometry: "hotspot",
		querySets: 8, quantum: 1e-3, hotspots: 2, hotRadius: 0.05,
		runtimeEvery: 100 * time.Millisecond,
		maxErrors:    -1,
	}
}

func TestClosedLoopRun(t *testing.T) {
	cfg := smallConfig()
	cfg.minTPS = 1
	cfg.maxErrors = 0
	var out bytes.Buffer
	r, ok, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("gates failed:\n%s", out.String())
	}
	if r.Schema != ReportSchema {
		t.Fatalf("schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.TPS <= 0 || r.Outcomes.Served == 0 {
		t.Fatalf("no throughput measured: tps=%g served=%d", r.TPS, r.Outcomes.Served)
	}
	if r.Outcomes.Errors != 0 {
		t.Fatalf("%d query errors: %v", r.Outcomes.Errors, r.ErrorSamples)
	}
	if r.Latency.Count != r.Outcomes.Served || r.Latency.P50 <= 0 || r.Latency.P99 < r.Latency.P50 {
		t.Fatalf("latency report inconsistent: %+v", r.Latency)
	}
	if r.Pool == nil || r.Pool.Submitted == 0 {
		t.Fatal("in-process run lacks the pool snapshot")
	}
	if len(r.LoadWindows) != 3 {
		t.Fatalf("in-process run has %d load windows, want 3", len(r.LoadWindows))
	}
	if len(r.Runtime) == 0 {
		t.Fatal("no runtime samples captured")
	}
	// The hotspot catalog replays duplicates, so the shared distance cache
	// must see hits.
	if r.Pool.DistCache.Hits == 0 {
		t.Fatal("hotspot workload produced no distcache hits")
	}
	if len(r.Gates) != 2 || !r.Gates[0].Pass || !r.Gates[1].Pass {
		t.Fatalf("gates not recorded: %+v", r.Gates)
	}
	for _, want := range []string{"TPS", "p99=", "gate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, out.String())
		}
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.duration = 300 * time.Millisecond
	var out bytes.Buffer
	r, _, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := writeJSON(path, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.TPS != r.TPS || back.Latency.P99 != r.Latency.P99 {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, r)
	}
	// Stable-schema spot check: the documented field names are present.
	for _, key := range []string{`"schema"`, `"tps"`, `"p99_ns"`, `"p999_ns"`, `"outcomes"`, `"elapsed_ns"`, `"query_sets"`} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("JSON report missing %s", key)
		}
	}
}

func TestGateFailure(t *testing.T) {
	cfg := smallConfig()
	cfg.duration = 300 * time.Millisecond
	cfg.minTPS = 1e9 // unattainable
	cfg.sloP99 = time.Nanosecond
	var out bytes.Buffer
	r, ok, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible gates passed")
	}
	var failed int
	for _, g := range r.Gates {
		if !g.Pass {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("want 2 failed gates, got %+v", r.Gates)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("text report lacks FAIL verdict:\n%s", out.String())
	}
}

func TestOpenLoopRun(t *testing.T) {
	cfg := smallConfig()
	cfg.mode = "open"
	cfg.rate = 40
	cfg.maxOut = 4
	cfg.duration = 500 * time.Millisecond
	var out bytes.Buffer
	r, _, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcomes.total() == 0 {
		t.Fatal("open loop measured no queries")
	}
	// At 40/s over 0.5s the target is ~20 arrivals; wildly exceeding it
	// would mean the Poisson pacing is broken.
	if total := r.Outcomes.total() + r.Dropped; total > 60 {
		t.Fatalf("open loop overshot the arrival rate: %d arrivals", total)
	}
}

// TestCatalogQuantization pins the duplicate-rate mechanism: every
// catalog coordinate sits exactly on the quantum grid, so equal grid
// cells give bit-identical points and identical snapped locations.
func TestCatalogQuantization(t *testing.T) {
	cfg := smallConfig()
	spec, err := presetSpec(cfg.preset)
	if err != nil {
		t.Fatal(err)
	}
	net, err := roadskyline.Generate(scaleSpec(spec, cfg.scale, cfg.seed))
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := buildCatalog(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(catalog) != cfg.querySets {
		t.Fatalf("catalog size %d, want %d", len(catalog), cfg.querySets)
	}
	locs := make(map[roadskyline.Point]roadskyline.Location)
	for _, qs := range catalog {
		if len(qs.points) != cfg.points || len(qs.locs) != cfg.points {
			t.Fatalf("spec shape wrong: %+v", qs)
		}
		for j, p := range qs.points {
			for _, c := range []float64{p.X, p.Y} {
				if q := math.Round(c/cfg.quantum) * cfg.quantum; q != c {
					t.Fatalf("coordinate %v not on the %g grid", c, cfg.quantum)
				}
			}
			if prev, seen := locs[p]; seen && prev != qs.locs[j] {
				t.Fatalf("equal point %v snapped to different locations: %v vs %v", p, prev, qs.locs[j])
			}
			locs[p] = qs.locs[j]
		}
	}
	// Hotspot geometry over a tiny catalog should produce some duplicate
	// grid cells (that is its purpose).
	if len(locs) >= cfg.querySets*cfg.points {
		t.Logf("warning: no duplicate grid cells in %d points", cfg.querySets*cfg.points)
	}

	if _, err := buildCatalog(&config{querySets: 1, points: 1, geometry: "bogus", quantum: 1e-3, hotspots: 1}, nil); err == nil {
		t.Fatal("bogus geometry accepted")
	}
	if _, err := parseAlgMix("bogus"); err == nil {
		t.Fatal("bogus alg accepted")
	}
}

// TestHTTPTargetClassification checks the HTTP target maps server
// statuses to the same outcome buckets as the in-process path, and that
// a full stress run works end to end over HTTP.
func TestHTTPTargetClassification(t *testing.T) {
	status := 200
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/query") {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		if len(r.URL.Query()["q"]) == 0 {
			t.Error("query URL carries no points")
		}
		w.WriteHeader(status)
	}))
	defer srv.Close()

	tgt := &httpTarget{client: srv.Client()}
	spec := querySpec{
		points: []roadskyline.Point{{X: 0.25, Y: 0.5}},
		alg:    roadskyline.LBCAlg,
	}
	spec.url = buildQueryURL(srv.URL, spec)

	for _, tc := range []struct {
		status  int
		outcome string
	}{{200, "served"}, {503, "saturated"}, {500, "error"}} {
		status = tc.status
		if got := classify(tgt.run(context.Background(), spec)); got != tc.outcome {
			t.Errorf("status %d classified %q, want %q", tc.status, got, tc.outcome)
		}
	}

	// Cancellation classifies as cancelled, not error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := classify(tgt.run(ctx, spec)); got != "cancelled" {
		t.Errorf("cancelled context classified %q", got)
	}

	// A whole run against the fake server: URL mode needs no network.
	status = 200
	cfg := smallConfig()
	cfg.url = srv.URL
	cfg.duration = 300 * time.Millisecond
	cfg.warmup = 50 * time.Millisecond
	var out bytes.Buffer
	r, _, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcomes.Served == 0 || r.Pool != nil {
		t.Fatalf("HTTP run wrong shape: served=%d pool=%v", r.Outcomes.Served, r.Pool)
	}
	if r.Config.URL != srv.URL || r.Config.Preset != "" {
		t.Fatalf("HTTP run config echo wrong: %+v", r.Config)
	}
}
