// Command skylinestress load-tests the skyline engine: it drives a
// configurable query workload against an in-process Pool (default) or a
// running skylineserve over HTTP (-url), measures achieved throughput and
// the latency distribution, and emits a text + JSON report with optional
// SLO gates for CI.
//
// Two arrival models:
//
//	-mode closed    -concurrency C workers issue queries back to back —
//	                the classic saturation benchmark; achieved TPS is the
//	                capacity at that concurrency.
//	-mode open      arrivals follow a Poisson process at -rate per second
//	                regardless of completions (the production shape);
//	                outstanding requests are bounded by -max-outstanding,
//	                arrivals beyond it are counted as dropped rather than
//	                silently queued, so latency is not coordinated-omission
//	                flattered.
//
// The workload is a pregenerated catalog of -querysets query point sets,
// drawn uniformly per request. Geometry -geometry uniform scatters points
// over the whole map; hotspot clusters them around -hotspots centers
// (radius -hotspot-radius), the bursty nearby-queries shape that
// exercises the distance cache and single-flight wavefront sharing.
// Coordinates are quantized to the -quantum grid, so a small catalog
// replays bit-identical queries and the duplicate rate is controllable.
//
// Examples:
//
//	skylinestress -preset CA -scale 0.25 -mode closed -concurrency 8 -duration 10s
//	skylinestress -url http://localhost:8080 -mode open -rate 200 -duration 30s
//	skylinestress -preset CA -mode closed -duration 5s -min-tps 50 -slo-p99 200ms -json report.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"roadskyline"
	"roadskyline/internal/obs"
)

// config is the parsed flag set; run is factored around it so tests can
// drive whole stress runs in-process.
type config struct {
	url     string
	preset  string
	scale   float64
	seed    int64
	omega   float64
	attrs   int
	workers int
	queue   int
	cache   int
	share   bool

	mode        string
	concurrency int
	rate        float64
	maxOut      int
	duration    time.Duration
	warmup      time.Duration

	alg       string
	points    int
	useAttrs  bool
	geometry  string
	querySets int
	quantum   float64
	hotspots  int
	hotRadius float64

	runtimeEvery time.Duration
	jsonOut      string
	minTPS       float64
	sloP99       time.Duration
	maxErrors    int64
}

func main() {
	cfg := &config{}
	flag.StringVar(&cfg.url, "url", "", "drive a running skylineserve at this base URL instead of an in-process pool")
	flag.StringVar(&cfg.preset, "preset", "CA", "paper preset for the in-process network: CA, AU or NA")
	flag.Float64Var(&cfg.scale, "scale", 0.25, "in-process network scale factor")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed for the network, objects and workload catalog")
	flag.Float64Var(&cfg.omega, "omega", 0.5, "in-process object density |D|/|E|")
	flag.IntVar(&cfg.attrs, "attrs", 1, "non-spatial attributes per generated object")
	flag.IntVar(&cfg.workers, "workers", 0, "in-process pool workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queue, "queue", 0, "in-process admission queue depth (0 = 4x workers)")
	flag.IntVar(&cfg.cache, "distcache", 1024, "in-process distance cache entries (0 disables)")
	flag.BoolVar(&cfg.share, "share", true, "in-process single-flight wavefront sharing")

	flag.StringVar(&cfg.mode, "mode", "closed", "arrival model: closed (fixed concurrency) or open (Poisson at -rate)")
	flag.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop worker count")
	flag.Float64Var(&cfg.rate, "rate", 100, "open-loop target arrivals per second")
	flag.IntVar(&cfg.maxOut, "max-outstanding", 256, "open-loop bound on in-flight requests; arrivals beyond it are dropped")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measurement window length")
	flag.DurationVar(&cfg.warmup, "warmup", time.Second, "warmup before measurement begins (queries run but are not recorded)")

	flag.StringVar(&cfg.alg, "alg", "LBC", "algorithm: CE, EDC, LBC or mixed (round-robin)")
	flag.IntVar(&cfg.points, "points", 3, "query points per query (|Q|)")
	flag.BoolVar(&cfg.useAttrs, "use-attrs", false, "include non-spatial attributes in dominance")
	flag.StringVar(&cfg.geometry, "geometry", "uniform", "query geometry: uniform or hotspot")
	flag.IntVar(&cfg.querySets, "querysets", 64, "catalog size: distinct query sets to draw from (smaller = more duplicates)")
	flag.Float64Var(&cfg.quantum, "quantum", 1e-3, "coordinate quantization grid; equal quantized points share cache keys")
	flag.IntVar(&cfg.hotspots, "hotspots", 4, "hotspot geometry: number of centers")
	flag.Float64Var(&cfg.hotRadius, "hotspot-radius", 0.05, "hotspot geometry: jitter radius around a center")

	flag.DurationVar(&cfg.runtimeEvery, "runtime-sample", time.Second, "Go runtime sampling interval during the run (0 disables)")
	flag.StringVar(&cfg.jsonOut, "json", "", "write the JSON report to this file")
	flag.Float64Var(&cfg.minTPS, "min-tps", 0, "gate: fail unless achieved TPS is at least this (0 disables)")
	flag.DurationVar(&cfg.sloP99, "slo-p99", 0, "gate: fail unless p99 latency is at most this (0 disables)")
	flag.Int64Var(&cfg.maxErrors, "max-errors", -1, "gate: fail if more than this many query errors (-1 disables)")
	flag.Parse()

	report, ok, err := run(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skylinestress:", err)
		os.Exit(1)
	}
	if cfg.jsonOut != "" {
		if err := writeJSON(cfg.jsonOut, report); err != nil {
			fmt.Fprintln(os.Stderr, "skylinestress: writing -json:", err)
			os.Exit(1)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// workerState is one load goroutine's private capture, merged after the
// run: the log-bucketed latency histogram, the outcome counts and a few
// error samples. No locks and no allocation on the per-query path.
type workerState struct {
	hist      obs.LogHist
	outcomes  map[string]uint64
	errSample []string
}

func newWorkerState() *workerState {
	return &workerState{outcomes: make(map[string]uint64, 5)}
}

func (ws *workerState) record(d time.Duration, err error) {
	outcome := classify(err)
	ws.outcomes[outcome]++
	if outcome == "served" || outcome == "error" {
		ws.hist.Observe(d)
	}
	if err != nil && outcome == "error" && len(ws.errSample) < 3 {
		ws.errSample = append(ws.errSample, err.Error())
	}
}

// run executes one full stress run: build the target, pregenerate the
// catalog, drive the arrival model through warmup + measurement, merge
// the per-worker captures and evaluate the gates. The bool reports
// whether all enabled gates passed.
func run(cfg *config, out io.Writer) (*Report, bool, error) {
	if cfg.points < 1 {
		return nil, false, fmt.Errorf("-points must be at least 1")
	}
	if cfg.querySets < 1 {
		return nil, false, fmt.Errorf("-querysets must be at least 1")
	}
	if cfg.duration <= 0 {
		return nil, false, fmt.Errorf("-duration must be positive")
	}

	var (
		tgt  target
		pool *roadskyline.Pool
		net  *roadskyline.Network
	)
	if cfg.url != "" {
		tgt = &httpTarget{client: &http.Client{Timeout: 60 * time.Second}}
	} else {
		var err error
		net, pool, err = buildPool(cfg)
		if err != nil {
			return nil, false, err
		}
		defer pool.Close()
		tgt = &poolTarget{pool: pool}
	}
	catalog, err := buildCatalog(cfg, net)
	if err != nil {
		return nil, false, err
	}

	sampler := obs.NewRuntimeSampler(cfg.runtimeEvery)
	sampler.Start()

	report := &Report{
		Schema:  ReportSchema,
		Started: time.Now(),
		Config: ConfigReport{
			URL: cfg.url, Preset: cfg.preset, Scale: cfg.scale, Seed: cfg.seed,
			Mode: cfg.mode, Concurrency: cfg.concurrency, Rate: cfg.rate,
			Duration: cfg.duration, Warmup: cfg.warmup,
			Alg: cfg.alg, Points: cfg.points, Geometry: cfg.geometry,
			QuerySets: cfg.querySets, Quantum: cfg.quantum,
		},
	}
	if cfg.url != "" {
		report.Config.Preset, report.Config.Scale = "", 0
	}

	var states []*workerState
	var dropped uint64
	var elapsed time.Duration
	switch cfg.mode {
	case "closed":
		states, elapsed, err = runClosed(cfg, tgt, catalog)
	case "open":
		states, dropped, elapsed, err = runOpen(cfg, tgt, catalog)
	default:
		err = fmt.Errorf("unknown -mode %q (want closed or open)", cfg.mode)
	}
	sampler.Stop()
	if err != nil {
		return nil, false, err
	}

	merged := newWorkerState()
	for _, ws := range states {
		merged.hist.Merge(&ws.hist)
		for k, v := range ws.outcomes {
			merged.outcomes[k] += v
		}
		for _, e := range ws.errSample {
			if len(merged.errSample) < 5 {
				merged.errSample = append(merged.errSample, e)
			}
		}
	}
	report.Elapsed = elapsed
	report.Outcomes = OutcomeReport{
		Served:    merged.outcomes["served"],
		Errors:    merged.outcomes["error"],
		Cancelled: merged.outcomes["cancelled"],
		Saturated: merged.outcomes["saturated"],
		Closed:    merged.outcomes["closed"],
	}
	report.Dropped = dropped
	report.ErrorSamples = merged.errSample
	if elapsed > 0 {
		report.TPS = float64(report.Outcomes.total()) / elapsed.Seconds()
	}
	report.Latency = LatencyReport{
		Count: merged.hist.Count(),
		Mean:  merged.hist.Mean(),
		P50:   merged.hist.Quantile(0.50),
		P90:   merged.hist.Quantile(0.90),
		P99:   merged.hist.Quantile(0.99),
		P999:  merged.hist.Quantile(0.999),
		Max:   merged.hist.Max(),
	}
	report.Runtime = sampler.Samples()
	if pool != nil {
		m := pool.PoolMetrics()
		report.Pool = &m
		report.LoadWindows = m.Load
	}

	ok := evaluateGates(report, cfg.minTPS, cfg.sloP99, cfg.maxErrors)
	writeText(out, report)
	return report, ok, nil
}

// buildPool constructs the in-process network, engine and pool for a
// local stress run, with the distance cache, wavefront sharing and the
// rolling load window enabled so a stress exercises the full serving
// configuration.
func buildPool(cfg *config) (*roadskyline.Network, *roadskyline.Pool, error) {
	spec, err := presetSpec(cfg.preset)
	if err != nil {
		return nil, nil, err
	}
	net, err := roadskyline.Generate(scaleSpec(spec, cfg.scale, cfg.seed))
	if err != nil {
		return nil, nil, err
	}
	objects := net.GenerateObjects(cfg.omega, cfg.attrs, cfg.seed+500)
	eng, err := roadskyline.NewEngine(net, objects, roadskyline.EngineConfig{
		WarmCache:       true,
		DistCache:       roadskyline.DistCacheConfig{Entries: cfg.cache},
		ShareWavefronts: cfg.share,
	})
	if err != nil {
		return nil, nil, err
	}
	pool, err := roadskyline.NewPool(eng, roadskyline.PoolConfig{
		Workers: cfg.workers, QueueDepth: cfg.queue, Window: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return net, pool, nil
}

func presetSpec(name string) (roadskyline.NetworkSpec, error) {
	switch name {
	case "CA":
		return roadskyline.CA, nil
	case "AU":
		return roadskyline.AU, nil
	case "NA":
		return roadskyline.NA, nil
	}
	return roadskyline.NetworkSpec{}, fmt.Errorf("unknown -preset %q (want CA, AU or NA)", name)
}

// scaleSpec shrinks a network spec to `scale` of its paper size, keeping
// it connected (at least 100 nodes, at least a spanning tree of edges)
// and stamping the seed — the same derivation skylinebench uses, so
// stress networks match benchmark networks at equal scale and seed.
func scaleSpec(spec roadskyline.NetworkSpec, scale float64, seed int64) roadskyline.NetworkSpec {
	if scale > 0 && scale != 1 {
		spec.Nodes = int(float64(spec.Nodes) * scale)
		if spec.Nodes < 100 {
			spec.Nodes = 100
		}
		spec.Edges = int(float64(spec.Edges) * scale)
		if spec.Edges < spec.Nodes-1 {
			spec.Edges = spec.Nodes - 1
		}
	}
	spec.Seed = seed
	return spec
}

// runClosed drives the closed loop: cfg.concurrency workers issue
// queries back to back from warmup start until the measurement window
// ends; only queries started inside the window are recorded. Returns the
// per-worker states and the measured elapsed time.
func runClosed(cfg *config, tgt target, catalog []querySpec) ([]*workerState, time.Duration, error) {
	if cfg.concurrency < 1 {
		return nil, 0, fmt.Errorf("-concurrency must be at least 1")
	}
	measureStart := time.Now().Add(cfg.warmup)
	end := measureStart.Add(cfg.duration)
	states := make([]*workerState, cfg.concurrency)
	var wg sync.WaitGroup
	for i := 0; i < cfg.concurrency; i++ {
		ws := newWorkerState()
		states[i] = ws
		rng := rand.New(rand.NewSource(cfg.seed + int64(i)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := time.Now()
				if !start.Before(end) {
					return
				}
				err := tgt.run(context.Background(), catalog[rng.Intn(len(catalog))])
				if !start.Before(measureStart) {
					ws.record(time.Since(start), err)
				}
			}
		}()
	}
	wg.Wait()
	// The last queries complete past `end`; measure to the true finish so
	// TPS is not inflated by tail completions landing outside the window.
	elapsed := time.Since(measureStart)
	return states, elapsed, nil
}

// runOpen drives the open loop: a Poisson arrival process at cfg.rate per
// second, each arrival served on its own goroutine. In-flight requests
// are bounded by cfg.maxOut; arrivals that find the bound exhausted are
// dropped and counted, never queued — queueing them would hide the
// generator falling behind and flatter the latency numbers (coordinated
// omission).
func runOpen(cfg *config, tgt target, catalog []querySpec) ([]*workerState, uint64, time.Duration, error) {
	if cfg.rate <= 0 {
		return nil, 0, 0, fmt.Errorf("-rate must be positive")
	}
	if cfg.maxOut < 1 {
		return nil, 0, 0, fmt.Errorf("-max-outstanding must be at least 1")
	}
	// One state per outstanding slot: the goroutine holding slot i owns
	// states[i] exclusively, keeping the capture lock-free.
	states := make([]*workerState, cfg.maxOut)
	slots := make(chan int, cfg.maxOut)
	for i := range states {
		states[i] = newWorkerState()
		slots <- i
	}
	rng := rand.New(rand.NewSource(cfg.seed + 4999))
	measureStart := time.Now().Add(cfg.warmup)
	end := measureStart.Add(cfg.duration)
	var dropped atomic.Uint64
	var wg sync.WaitGroup
	next := time.Now()
	for {
		// Absolute-time scheduling: each interarrival gap is exponential,
		// and sleeping to the precomputed instant (rather than for the gap)
		// keeps the achieved rate on target even when Sleep overshoots.
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.rate * float64(time.Second)))
		if !next.Before(end) {
			break
		}
		time.Sleep(time.Until(next))
		spec := catalog[rng.Intn(len(catalog))]
		select {
		case slot := <-slots:
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				err := tgt.run(context.Background(), spec)
				if !start.Before(measureStart) {
					states[slot].record(time.Since(start), err)
				}
				slots <- slot
			}()
		default:
			if !time.Now().Before(measureStart) {
				dropped.Add(1)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(measureStart)
	return states, dropped.Load(), elapsed, nil
}
