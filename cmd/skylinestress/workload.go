package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strings"

	"roadskyline"
)

// querySpec is one pregenerated query of the workload catalog: the
// quantized planar points (what an HTTP client would send), the snapped
// locations (what the in-process pool consumes) and the query options.
// Catalog entries are drawn uniformly at random per request, so the
// catalog size -querysets directly controls the duplicate rate: a small
// catalog over a hotspot geometry replays the same quantized — and
// therefore identically snapped — query points again and again, which is
// exactly what hits the distance cache and coalesces onto shared
// wavefronts.
type querySpec struct {
	points   []roadskyline.Point
	locs     []roadskyline.Location
	alg      roadskyline.Algorithm
	useAttrs bool
	url      string // prebuilt /query URL for the HTTP target
}

// buildCatalog pregenerates cfg.querySets query specs on the given
// network (nil for a pure HTTP run against a unit-square preset network:
// the server snaps the points itself, so no local network is needed).
func buildCatalog(cfg *config, n *roadskyline.Network) ([]querySpec, error) {
	rng := rand.New(rand.NewSource(cfg.seed + 1000))
	// Hotspot centers: fixed for the run so the duplicate mass is stable.
	centers := make([]roadskyline.Point, cfg.hotspots)
	for i := range centers {
		centers[i] = roadskyline.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	algs, err := parseAlgMix(cfg.alg)
	if err != nil {
		return nil, err
	}
	catalog := make([]querySpec, cfg.querySets)
	for i := range catalog {
		spec := querySpec{
			points:   make([]roadskyline.Point, cfg.points),
			alg:      algs[i%len(algs)],
			useAttrs: cfg.useAttrs,
		}
		for j := range spec.points {
			var p roadskyline.Point
			switch cfg.geometry {
			case "uniform":
				p = roadskyline.Point{X: rng.Float64(), Y: rng.Float64()}
			case "hotspot":
				c := centers[rng.Intn(len(centers))]
				p = roadskyline.Point{
					X: clamp01(c.X + (rng.Float64()*2-1)*cfg.hotRadius),
					Y: clamp01(c.Y + (rng.Float64()*2-1)*cfg.hotRadius),
				}
			default:
				return nil, fmt.Errorf("unknown -geometry %q (want uniform or hotspot)", cfg.geometry)
			}
			// Quantize to the -quantum grid: two specs that land in the same
			// grid cell carry bit-identical coordinates, snap to the same
			// location, and therefore share distance-cache and single-flight
			// wavefront keys.
			spec.points[j] = roadskyline.Point{
				X: math.Round(p.X/cfg.quantum) * cfg.quantum,
				Y: math.Round(p.Y/cfg.quantum) * cfg.quantum,
			}
		}
		if n != nil {
			spec.locs = make([]roadskyline.Location, len(spec.points))
			for j, p := range spec.points {
				loc, err := n.NearestLocation(p)
				if err != nil {
					return nil, fmt.Errorf("snapping catalog point: %w", err)
				}
				spec.locs[j] = loc
			}
		}
		if cfg.url != "" {
			spec.url = buildQueryURL(cfg.url, spec)
		}
		catalog[i] = spec
	}
	return catalog, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// parseAlgMix expands the -alg flag into the algorithm rotation: a single
// name, or "mixed" for round-robin over all three.
func parseAlgMix(name string) ([]roadskyline.Algorithm, error) {
	switch strings.ToUpper(name) {
	case "CE":
		return []roadskyline.Algorithm{roadskyline.CEAlg}, nil
	case "EDC":
		return []roadskyline.Algorithm{roadskyline.EDCAlg}, nil
	case "", "LBC":
		return []roadskyline.Algorithm{roadskyline.LBCAlg}, nil
	case "MIXED":
		return []roadskyline.Algorithm{roadskyline.LBCAlg, roadskyline.CEAlg, roadskyline.EDCAlg}, nil
	}
	return nil, fmt.Errorf("unknown -alg %q (want CE, EDC, LBC or mixed)", name)
}

func buildQueryURL(base string, spec querySpec) string {
	v := url.Values{}
	for _, p := range spec.points {
		v.Add("q", fmt.Sprintf("%g,%g", p.X, p.Y))
	}
	v.Set("alg", spec.alg.String())
	if spec.useAttrs {
		v.Set("attrs", "1")
	}
	return strings.TrimSuffix(base, "/") + "/query?" + v.Encode()
}

// target abstracts where queries go: the in-process pool or a running
// skylineserve over HTTP. run returns the final error classified the same
// way in both cases (saturation maps to roadskyline.ErrPoolSaturated).
type target interface {
	run(ctx context.Context, spec querySpec) error
}

// poolTarget drives an in-process Pool.
type poolTarget struct {
	pool *roadskyline.Pool
}

func (t *poolTarget) run(ctx context.Context, spec querySpec) error {
	_, err := t.pool.Skyline(ctx, roadskyline.Query{
		Points:    spec.locs,
		Algorithm: spec.alg,
		UseAttrs:  spec.useAttrs,
	})
	return err
}

// httpTarget drives a running skylineserve. A 503 means the server's pool
// rejected the query at admission; it maps to ErrPoolSaturated so the
// outcome split matches the in-process path.
type httpTarget struct {
	client *http.Client
}

func (t *httpTarget) run(ctx context.Context, spec querySpec) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, spec.url, nil)
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer resp.Body.Close()
	// Drain so the connection is reused; the skyline itself is not the
	// generator's business.
	io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode == http.StatusOK:
		return nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return roadskyline.ErrPoolSaturated
	default:
		return fmt.Errorf("GET %s: %s", spec.url, resp.Status)
	}
}

// classify maps a finished query's error to a report outcome bucket,
// mirroring the pool's own classification.
func classify(err error) string {
	switch {
	case err == nil:
		return "served"
	case errors.Is(err, roadskyline.ErrPoolSaturated):
		return "saturated"
	case errors.Is(err, roadskyline.ErrPoolClosed):
		return "closed"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "error"
	}
}
