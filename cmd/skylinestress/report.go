package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"roadskyline"
	"roadskyline/internal/obs"
)

// ReportSchema identifies the JSON report layout; bump it when a field
// changes meaning so downstream tooling can refuse reports it does not
// understand.
const ReportSchema = "skylinestress/1"

// Report is the stress run's result document, written as JSON with -json
// and rendered as text on stdout. The schema is stable: fields are only
// added, never renamed or repurposed, without bumping ReportSchema.
type Report struct {
	Schema  string       `json:"schema"`
	Started time.Time    `json:"started"`
	Config  ConfigReport `json:"config"`
	// Elapsed is the measurement window's actual length (excluding
	// warmup); TPS is completed queries per second over it.
	Elapsed time.Duration `json:"elapsed_ns"`
	TPS     float64       `json:"tps"`
	Latency LatencyReport `json:"latency"`
	// Outcomes buckets every measured query; Dropped counts open-loop
	// arrivals shed because the outstanding-request bound was reached
	// (the generator fell behind the target rate; they are not errors).
	Outcomes OutcomeReport `json:"outcomes"`
	Dropped  uint64        `json:"dropped"`
	// ErrorSamples holds up to a handful of distinct error strings for
	// triage; the full count is in Outcomes.Errors.
	ErrorSamples []string `json:"error_samples,omitempty"`
	// Pool is the in-process pool's final metrics snapshot (nil for HTTP
	// runs); LoadWindows its rolling views at the end of the run.
	Pool        *roadskyline.PoolMetrics `json:"pool,omitempty"`
	LoadWindows []roadskyline.LoadStats  `json:"load_windows,omitempty"`
	// Runtime holds the Go runtime samples taken during the run — for
	// in-process runs they profile the engine under load, for HTTP runs
	// the generator itself.
	Runtime []obs.RuntimeSample `json:"runtime,omitempty"`
	Gates   []GateResult        `json:"gates,omitempty"`
}

// ConfigReport echoes the workload configuration into the report so a
// report file is self-describing.
type ConfigReport struct {
	URL         string        `json:"url,omitempty"`
	Preset      string        `json:"preset,omitempty"`
	Scale       float64       `json:"scale,omitempty"`
	Seed        int64         `json:"seed"`
	Mode        string        `json:"mode"`
	Concurrency int           `json:"concurrency,omitempty"`
	Rate        float64       `json:"rate,omitempty"`
	Duration    time.Duration `json:"duration_ns"`
	Warmup      time.Duration `json:"warmup_ns"`
	Alg         string        `json:"alg"`
	Points      int           `json:"points"`
	Geometry    string        `json:"geometry"`
	QuerySets   int           `json:"query_sets"`
	Quantum     float64       `json:"quantum"`
}

// LatencyReport summarizes the merged per-worker histograms. Quantiles
// are upper bucket edges of the shared log-linear layout (≤ ~3% above the
// true order statistic); Max is exact.
type LatencyReport struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// OutcomeReport buckets the measured queries by how they ended.
type OutcomeReport struct {
	Served    uint64 `json:"served"`
	Errors    uint64 `json:"errors"`
	Cancelled uint64 `json:"cancelled"`
	Saturated uint64 `json:"saturated"`
	Closed    uint64 `json:"closed"`
}

func (o OutcomeReport) total() uint64 {
	return o.Served + o.Errors + o.Cancelled + o.Saturated + o.Closed
}

// GateResult is one pass/fail SLO gate evaluation; any failed gate makes
// the command exit nonzero.
type GateResult struct {
	Name   string `json:"name"`
	Limit  string `json:"limit"`
	Actual string `json:"actual"`
	Pass   bool   `json:"pass"`
}

// evaluateGates applies the -min-tps / -slo-p99 / -max-errors gates to
// the report and records the verdicts in it. Returns true when all
// enabled gates pass.
func evaluateGates(r *Report, minTPS float64, sloP99 time.Duration, maxErrors int64) bool {
	ok := true
	add := func(name, limit, actual string, pass bool) {
		r.Gates = append(r.Gates, GateResult{Name: name, Limit: limit, Actual: actual, Pass: pass})
		ok = ok && pass
	}
	if minTPS > 0 {
		add("min-tps", fmt.Sprintf("%g", minTPS), fmt.Sprintf("%.2f", r.TPS), r.TPS >= minTPS)
	}
	if sloP99 > 0 {
		add("slo-p99", sloP99.String(), r.Latency.P99.String(), r.Latency.P99 <= sloP99)
	}
	if maxErrors >= 0 {
		add("max-errors", fmt.Sprintf("%d", maxErrors), fmt.Sprintf("%d", r.Outcomes.Errors),
			r.Outcomes.Errors <= uint64(maxErrors))
	}
	return ok
}

// writeText renders the report for humans.
func writeText(w io.Writer, r *Report) {
	fmt.Fprintf(w, "skylinestress %s mode=%s alg=%s |Q|=%d geometry=%s sets=%d\n",
		targetName(r.Config), r.Config.Mode, r.Config.Alg, r.Config.Points,
		r.Config.Geometry, r.Config.QuerySets)
	fmt.Fprintf(w, "measured %s (warmup %s): %d queries, %.1f TPS\n",
		r.Elapsed.Round(time.Millisecond), r.Config.Warmup, r.Outcomes.total(), r.TPS)
	fmt.Fprintf(w, "latency  mean=%s p50=%s p90=%s p99=%s p99.9=%s max=%s\n",
		r.Latency.Mean, r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.P999, r.Latency.Max)
	fmt.Fprintf(w, "outcomes served=%d errors=%d cancelled=%d saturated=%d closed=%d dropped=%d\n",
		r.Outcomes.Served, r.Outcomes.Errors, r.Outcomes.Cancelled,
		r.Outcomes.Saturated, r.Outcomes.Closed, r.Dropped)
	if r.Pool != nil {
		dc := r.Pool.DistCache
		wf := r.Pool.Wavefront
		fmt.Fprintf(w, "caches   distcache=%d/%d hits", dc.Hits, dc.Hits+dc.Misses)
		fmt.Fprintf(w, " wavefront=%d lead/%d share\n", wf.Leads, wf.Shares)
	}
	if n := len(r.Runtime); n > 0 {
		last := r.Runtime[n-1]
		fmt.Fprintf(w, "runtime  heap=%.1fMB goroutines=%d gc=%d pause_p99=%s sched_p99=%s (%d samples)\n",
			float64(last.HeapBytes)/(1<<20), last.Goroutines, last.GCCycles,
			last.GCPauseP99, last.SchedLatP99, n)
	}
	for _, e := range r.ErrorSamples {
		fmt.Fprintf(w, "error    %s\n", e)
	}
	for _, g := range r.Gates {
		verdict := "PASS"
		if !g.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "gate     %-10s limit=%-10s actual=%-10s %s\n", g.Name, g.Limit, g.Actual, verdict)
	}
}

func targetName(c ConfigReport) string {
	if c.URL != "" {
		return c.URL
	}
	return fmt.Sprintf("in-process %s x%g", c.Preset, c.Scale)
}

// writeJSON writes the report, indented, to path.
func writeJSON(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
