// Command skylinebench regenerates the paper's evaluation figures
// (Section 6) at full paper scale, printing one table per figure in the
// same layout as the published plots.
//
// Usage:
//
//	skylinebench                  # everything (takes a while at scale 1)
//	skylinebench -fig 4a          # just Figure 4(a)
//	skylinebench -fig 5 -trials 3 # Figures 5(a)-(c) with 3 query sets
//	skylinebench -scale 0.2       # all figures on 20%-size networks
//	skylinebench -fig ablations   # the design-choice ablations
//	skylinebench -parallel 8      # pool throughput: serial vs 8 workers
//	skylinebench -singleflight 8  # wavefront sharing ablation: off vs on under duplicate load
//	skylinebench -backends        # storage tiers: in-memory vs file vs mmap on identical work
//	skylinebench -trajectory -json BENCH_7.json       # record the regression baseline
//	skylinebench -compare BENCH_7.json                # gate: fail on regression vs baseline
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"roadskyline"
	"roadskyline/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to run: 4a 4b 4c 5 6q 6w ablations all")
		scale   = flag.Float64("scale", 1.0, "network size scale (1 = paper scale)")
		trials  = flag.Int("trials", 10, "query sets averaged per setting (paper: 10)")
		seed    = flag.Int64("seed", 2007, "random seed")
		quickQ  = flag.Bool("quick", false, "use the reduced Quick configuration")
		csv     = flag.Bool("csv", false, "emit tables as CSV")
		par     = flag.Int("parallel", 0, "run the pool throughput benchmark with this many workers instead of figures")
		queries = flag.Int("queries", 96, "queries in the -parallel workload")
		lms     = flag.Int("landmarks", 0, "ALT landmark count per environment (0 = default, negative disables)")
		dcache  = flag.Int("distcache", 0, "run the distance-cache ablation with this many cache entries instead of figures")
		sflight = flag.Int("singleflight", 0, "run the wavefront single-flight ablation with this many pool workers instead of figures")
		backs   = flag.Bool("backends", false, "run the storage-backend comparison (mem vs file vs mmap) instead of figures")
		jsonOut = flag.String("json", "", "also write machine-readable results to this JSON file")
		traj    = flag.Bool("trajectory", false, "run the deterministic regression workload instead of figures (the BENCH_7.json trajectory)")
		compare = flag.String("compare", "", "trajectory baseline JSON to gate against: run the trajectory workload and exit non-zero on regression (implies -trajectory)")
		thresh  = flag.Float64("threshold", 0.10, "allowed relative growth in the trajectory's deterministic work counters before -compare fails")
		tthresh = flag.Float64("time-threshold", 0.50, "allowed relative growth in the trajectory's response times before -compare fails")
		traceF  = flag.String("trace", "", "run one traced query per algorithm and write the slowest one's Chrome trace-event JSON (Perfetto-loadable) to this file instead of figures")
	)
	flag.Parse()

	if *traceF != "" {
		if err := traceBench(*scale, *seed, *lms, *traceF); err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *traj || *compare != "" {
		// The trajectory pins its own scale so the committed baseline and
		// CI runs agree without coordinating flags; -scale still overrides.
		tscale := trajectoryScale
		if flagSet("scale") {
			tscale = *scale
		}
		if err := trajectoryMain(tscale, *seed, *lms, *jsonOut, *compare, *thresh, *tthresh); err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: trajectory: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *par > 0 {
		if err := parallelBench(*scale, *par, *queries, *seed, *lms, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: parallel: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *dcache > 0 {
		if err := distCacheBench(*scale, *dcache, *queries, *seed, *lms, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: distcache: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sflight > 0 {
		if err := singleFlightBench(*scale, *sflight, *queries, *seed, *lms, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: singleflight: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *backs {
		if err := backendsBench(*scale, *queries, *seed, *lms, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: backends: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Default()
	if *quickQ {
		cfg = experiments.Quick()
	}
	cfg.Scale = *scale
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.Landmarks = *lms
	if *quickQ && !flagSet("scale") {
		cfg.Scale = experiments.Quick().Scale
	}
	if *quickQ && !flagSet("trials") {
		cfg.Trials = experiments.Quick().Trials
	}
	lab := experiments.NewLab(cfg)

	fmt.Printf("reproducing ICDE'07 multi-source road-network skyline figures "+
		"(scale=%.2f, trials=%d, seed=%d)\n\n", cfg.Scale, cfg.Trials, cfg.Seed)

	start := time.Now()
	want := strings.ToLower(*fig)
	ran := false
	var collected []experiments.Table
	show := func(t experiments.Table) {
		collected = append(collected, t)
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", t.Figure, t.Title, t.CSV())
			return
		}
		fmt.Println(t)
	}
	run1 := func(name string, f func() (experiments.Table, error)) {
		if want != "all" && want != name {
			return
		}
		ran = true
		tab, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: %s: %v\n", name, err)
			os.Exit(1)
		}
		show(tab)
	}
	run3 := func(name string, f func() ([3]experiments.Table, error)) {
		if want != "all" && want != name {
			return
		}
		ran = true
		tabs, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tabs {
			show(t)
		}
	}

	run1("4a", lab.Fig4a)
	run1("4b", lab.Fig4b)
	run1("4c", lab.Fig4c)
	run3("5", lab.Fig5)
	run3("6q", lab.Fig6Q)
	run3("6w", lab.Fig6W)
	if want == "all" || want == "ablations" {
		ran = true
		for _, f := range []func() (experiments.Table, error){
			lab.AblationPLB, lab.AblationAStar, lab.AblationLandmarks, lab.AblationClustering, lab.AblationBuffer,
		} {
			tab, err := f()
			if err != nil {
				fmt.Fprintf(os.Stderr, "skylinebench: ablation: %v\n", err)
				os.Exit(1)
			}
			show(tab)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "skylinebench: unknown figure %q (want 4a 4b 4c 5 6q 6w ablations all)\n", *fig)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	fmt.Printf("done in %v\n", elapsed.Round(time.Millisecond))
	if *jsonOut != "" {
		out := benchJSON{
			Figure: want, Scale: cfg.Scale, Trials: cfg.Trials, Seed: cfg.Seed,
			Quick: *quickQ, ElapsedSeconds: elapsed.Seconds(), Tables: collected,
		}
		if err := writeJSON(*jsonOut, out); err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// benchJSON is the machine-readable result document behind -json: the run
// configuration plus every table produced, in the order printed.
type benchJSON struct {
	Figure         string              `json:"figure"`
	Scale          float64             `json:"scale"`
	Trials         int                 `json:"trials"`
	Seed           int64               `json:"seed"`
	Quick          bool                `json:"quick"`
	ElapsedSeconds float64             `json:"elapsed_seconds"`
	Tables         []experiments.Table `json:"tables"`
}

// parallelJSON is -json's document for the -parallel throughput bench.
type parallelJSON struct {
	Network         string  `json:"network"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	Queries         int     `json:"queries"`
	Workers         int     `json:"workers"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	SerialQPS       float64 `json:"serial_qps"`
	ParallelQPS     float64 `json:"parallel_qps"`
	Speedup         float64 `json:"speedup"`
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parallelBench measures concurrent query throughput: the same mixed
// CE/EDC/LBC workload answered serially on one engine and then through a
// Pool of `workers` clones, reporting wall time, queries/s and speedup.
func parallelBench(scale float64, workers, queries int, seed int64, landmarks int, jsonOut string) error {
	if queries < 1 {
		return fmt.Errorf("-queries must be at least 1 (got %d)", queries)
	}
	spec := scaleSpec(roadskyline.CA, scale, seed)
	fmt.Printf("pool throughput on %s (%d nodes, %d edges), %d queries, %d workers\n",
		spec.Name, spec.Nodes, spec.Edges, queries, workers)
	n, err := roadskyline.Generate(spec)
	if err != nil {
		return err
	}
	eng, err := roadskyline.NewEngine(n, n.GenerateObjects(0.5, 0, seed), roadskyline.EngineConfig{
		Landmarks:   landmarks,
		NoLandmarks: landmarks < 0,
	})
	if err != nil {
		return err
	}
	algs := []roadskyline.Algorithm{roadskyline.CEAlg, roadskyline.EDCAlg, roadskyline.LBCAlg}
	work := make([]roadskyline.Query, queries)
	for i := range work {
		work[i] = roadskyline.Query{
			Points:    n.GenerateQueryPoints(4, 0.1, seed+int64(i)),
			Algorithm: algs[i%len(algs)],
		}
	}

	serialStart := time.Now()
	for i, q := range work {
		if _, err := eng.Skyline(q); err != nil {
			return fmt.Errorf("serial query %d: %w", i, err)
		}
	}
	serial := time.Since(serialStart)

	pool, err := roadskyline.NewPool(eng, roadskyline.PoolConfig{Workers: workers})
	if err != nil {
		return err
	}
	defer pool.Close()
	poolStart := time.Now()
	_, errs := pool.SkylineBatch(context.Background(), work)
	parallel := time.Since(poolStart)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("pooled query %d: %w", i, err)
		}
	}

	qps := func(d time.Duration) float64 { return float64(queries) / d.Seconds() }
	fmt.Printf("%-20s%14s%14s\n", "", "wall", "queries/s")
	fmt.Printf("%-20s%14v%14.1f\n", "serial (1 engine)", serial.Round(time.Millisecond), qps(serial))
	fmt.Printf("%-20s%14v%14.1f\n", fmt.Sprintf("pool (%d workers)", workers),
		parallel.Round(time.Millisecond), qps(parallel))
	fmt.Printf("speedup: %.2fx\n", serial.Seconds()/parallel.Seconds())
	if jsonOut != "" {
		out := parallelJSON{
			Network: spec.Name, Nodes: spec.Nodes, Edges: spec.Edges,
			Queries: queries, Workers: workers,
			SerialSeconds: serial.Seconds(), ParallelSeconds: parallel.Seconds(),
			SerialQPS: qps(serial), ParallelQPS: qps(parallel),
			Speedup: serial.Seconds() / parallel.Seconds(),
		}
		if err := writeJSON(jsonOut, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

// traceBench runs one traced query per algorithm on a warm engine and
// writes the slowest one's causal trace as Chrome trace-event JSON — a
// one-command way to get a Perfetto-loadable trace out of the benchmark
// environment (see docs/OBSERVABILITY.md).
func traceBench(scale float64, seed int64, landmarks int, out string) error {
	spec := scaleSpec(roadskyline.CA, scale, seed)
	n, err := roadskyline.Generate(spec)
	if err != nil {
		return err
	}
	eng, err := roadskyline.NewEngine(n, n.GenerateObjects(0.5, 0, seed), roadskyline.EngineConfig{
		Landmarks:      landmarks,
		NoLandmarks:    landmarks < 0,
		WarmCache:      true,
		FlightRecorder: roadskyline.FlightRecorderConfig{Size: 16},
	})
	if err != nil {
		return err
	}
	points := n.GenerateQueryPoints(4, 0.1, seed)
	var slowest roadskyline.FlightRecord
	for _, alg := range []roadskyline.Algorithm{roadskyline.CEAlg, roadskyline.EDCAlg, roadskyline.LBCAlg} {
		res, err := eng.Skyline(roadskyline.Query{Points: points, Algorithm: alg, Trace: true})
		if err != nil {
			return fmt.Errorf("%v query: %w", alg, err)
		}
		rec, ok := eng.TraceRecord(res.TraceID)
		if !ok {
			return fmt.Errorf("%v query: trace %s not retained", alg, res.TraceID)
		}
		fmt.Printf("%-4v trace %s: %d spans, %d skyline points, total %v\n",
			alg, rec.TraceID, len(rec.Spans), len(res.Points), rec.Total.Round(time.Microsecond))
		if rec.Total > slowest.Total {
			slowest = rec
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := roadskyline.WriteTraceEvents(f, slowest); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (trace %s, load it at https://ui.perfetto.dev)\n", out, slowest.TraceID)
	return nil
}

// distCacheJSON is -json's document for the -distcache ablation bench.
type distCacheJSON struct {
	Network          string  `json:"network"`
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	Queries          int     `json:"queries"`
	HotPointSets     int     `json:"hot_point_sets"`
	CacheEntries     int     `json:"cache_entries"`
	OffSeconds       float64 `json:"off_seconds"`
	OnSeconds        float64 `json:"on_seconds"`
	OffNodesExpanded int     `json:"off_nodes_expanded"`
	OnNodesExpanded  int     `json:"on_nodes_expanded"`
	ExpansionRatio   float64 `json:"expansion_ratio"`
	HitRate          float64 `json:"hit_rate"`
	Speedup          float64 `json:"speedup"`
}

// distCacheBench measures the cross-query distance cache on the workload it
// targets: a small set of hot query-point sets asked over and over (the
// repeated-location pattern of a live service), rotating CE, EDC and LBC.
// The same workload runs on two warm-cache engines — without and with the
// cache — and the report compares node expansions, wall time and hit rate.
// Both engines run warm (WarmCache: true): the cache is bypassed in
// cold-cache paper mode, so the published figures are unaffected either way.
func distCacheBench(scale float64, entries, queries int, seed int64, landmarks int, jsonOut string) error {
	if queries < 1 {
		return fmt.Errorf("-queries must be at least 1 (got %d)", queries)
	}
	spec := scaleSpec(roadskyline.CA, scale, seed)
	n, err := roadskyline.Generate(spec)
	if err != nil {
		return err
	}
	objs := n.GenerateObjects(0.5, 0, seed)

	// A handful of hot point sets cycled across the whole workload: every
	// set repeats queries/hotSets times, so the cache — keyed by quantized
	// query-point location — can serve all but the first round.
	const hotSets = 8
	hot := make([][]roadskyline.Location, hotSets)
	for i := range hot {
		hot[i] = n.GenerateQueryPoints(4, 0.1, seed+int64(i))
	}
	algs := []roadskyline.Algorithm{roadskyline.CEAlg, roadskyline.EDCAlg, roadskyline.LBCAlg}
	work := make([]roadskyline.Query, queries)
	for i := range work {
		work[i] = roadskyline.Query{Points: hot[i%hotSets], Algorithm: algs[i%len(algs)]}
	}

	run := func(cacheEntries int) (time.Duration, int, *roadskyline.Engine, error) {
		eng, err := roadskyline.NewEngine(n, objs, roadskyline.EngineConfig{
			WarmCache:   true,
			Landmarks:   landmarks,
			NoLandmarks: landmarks < 0,
			DistCache:   roadskyline.DistCacheConfig{Entries: cacheEntries},
		})
		if err != nil {
			return 0, 0, nil, err
		}
		nodes := 0
		start := time.Now()
		for i, q := range work {
			res, err := eng.Skyline(q)
			if err != nil {
				return 0, 0, nil, fmt.Errorf("query %d: %w", i, err)
			}
			nodes += res.Stats.NodesExpanded
		}
		return time.Since(start), nodes, eng, nil
	}

	fmt.Printf("distance-cache ablation on %s (%d nodes, %d edges), %d queries over %d hot point sets\n",
		spec.Name, spec.Nodes, spec.Edges, queries, hotSets)
	offWall, offNodes, _, err := run(0)
	if err != nil {
		return err
	}
	onWall, onNodes, onEng, err := run(entries)
	if err != nil {
		return err
	}
	cs := onEng.DistCacheStats()

	ratio := 0.0
	if onNodes > 0 {
		ratio = float64(offNodes) / float64(onNodes)
	}
	fmt.Printf("%-24s%14s%16s\n", "", "wall", "nodes expanded")
	fmt.Printf("%-24s%14v%16d\n", "cache off", offWall.Round(time.Millisecond), offNodes)
	fmt.Printf("%-24s%14v%16d\n", fmt.Sprintf("cache on (%d entries)", entries),
		onWall.Round(time.Millisecond), onNodes)
	fmt.Printf("expansion ratio: %.2fx fewer, hit rate %.0f%% (%d hits / %d lookups), speedup %.2fx\n",
		ratio, 100*cs.HitRate(), cs.Hits, cs.Hits+cs.Misses, offWall.Seconds()/onWall.Seconds())
	if jsonOut != "" {
		out := distCacheJSON{
			Network: spec.Name, Nodes: spec.Nodes, Edges: spec.Edges,
			Queries: queries, HotPointSets: hotSets, CacheEntries: entries,
			OffSeconds: offWall.Seconds(), OnSeconds: onWall.Seconds(),
			OffNodesExpanded: offNodes, OnNodesExpanded: onNodes,
			ExpansionRatio: ratio, HitRate: cs.HitRate(),
			Speedup: offWall.Seconds() / onWall.Seconds(),
		}
		if err := writeJSON(jsonOut, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

// singleFlightJSON is -json's document for the -singleflight ablation.
type singleFlightJSON struct {
	Network          string  `json:"network"`
	Nodes            int     `json:"nodes"`
	Edges            int     `json:"edges"`
	Queries          int     `json:"queries"`
	HotPointSets     int     `json:"hot_point_sets"`
	Workers          int     `json:"workers"`
	OffSeconds       float64 `json:"off_seconds"`
	OnSeconds        float64 `json:"on_seconds"`
	OffNodesExpanded int     `json:"off_nodes_expanded"`
	OnNodesExpanded  int     `json:"on_nodes_expanded"`
	ExpansionRatio   float64 `json:"expansion_ratio"`
	ShareRate        float64 `json:"share_rate"`
	Leads            int64   `json:"leads"`
	Shares           int64   `json:"shares"`
	Bypasses         int64   `json:"bypasses"`
	Speedup          float64 `json:"speedup"`
}

// singleFlightBench measures in-flight wavefront sharing on the workload it
// targets: a duplicate-heavy burst pattern where every round submits
// `workers` identical queries at once (the thundering-herd shape of a live
// service behind a load balancer), cycling a few hot point sets and
// rotating CE, EDC and LBC between rounds. The same batch runs through two
// pools — sharing off and sharing on — and the report compares node
// expansions, wall time and the broker's share rate. Coalescing here is
// opportunistic (duplicates must overlap in flight), so the share rate is
// below 100% but the expansion ratio still shows the herd collapsing;
// the deterministic leader/subscriber accounting is pinned by the gated
// wavefront trajectory cells instead.
func singleFlightBench(scale float64, workers, queries int, seed int64, landmarks int, jsonOut string) error {
	if queries < 1 {
		return fmt.Errorf("-queries must be at least 1 (got %d)", queries)
	}
	if workers < 2 {
		return fmt.Errorf("-singleflight needs at least 2 workers to overlap duplicates (got %d)", workers)
	}
	spec := scaleSpec(roadskyline.CA, scale, seed)
	n, err := roadskyline.Generate(spec)
	if err != nil {
		return err
	}
	objs := n.GenerateObjects(0.5, 0, seed)

	// Each round is `workers` copies of one (point set, algorithm) query:
	// SkylineBatch keeps identical queries adjacent, so a whole round is in
	// flight together and all but one copy can subscribe to the leader.
	const hotSets = 8
	hot := make([][]roadskyline.Location, hotSets)
	for i := range hot {
		hot[i] = n.GenerateQueryPoints(4, 0.1, seed+int64(i))
	}
	algs := []roadskyline.Algorithm{roadskyline.CEAlg, roadskyline.EDCAlg, roadskyline.LBCAlg}
	work := make([]roadskyline.Query, queries)
	for i := range work {
		round := i / workers
		work[i] = roadskyline.Query{Points: hot[round%hotSets], Algorithm: algs[round%len(algs)]}
	}

	run := func(share bool) (time.Duration, int, *roadskyline.Engine, error) {
		eng, err := roadskyline.NewEngine(n, objs, roadskyline.EngineConfig{
			WarmCache:       true,
			Landmarks:       landmarks,
			NoLandmarks:     landmarks < 0,
			ShareWavefronts: share,
		})
		if err != nil {
			return 0, 0, nil, err
		}
		pool, err := roadskyline.NewPool(eng, roadskyline.PoolConfig{Workers: workers})
		if err != nil {
			return 0, 0, nil, err
		}
		defer pool.Close()
		start := time.Now()
		results, errs := pool.SkylineBatch(context.Background(), work)
		wall := time.Since(start)
		nodes := 0
		for i, err := range errs {
			if err != nil {
				return 0, 0, nil, fmt.Errorf("query %d: %w", i, err)
			}
			nodes += results[i].Stats.NodesExpanded
		}
		return wall, nodes, eng, nil
	}

	fmt.Printf("wavefront single-flight ablation on %s (%d nodes, %d edges), %d queries in rounds of %d duplicates over %d hot point sets\n",
		spec.Name, spec.Nodes, spec.Edges, queries, workers, hotSets)
	offWall, offNodes, _, err := run(false)
	if err != nil {
		return err
	}
	onWall, onNodes, onEng, err := run(true)
	if err != nil {
		return err
	}
	ws := onEng.WavefrontStats()

	ratio := 0.0
	if onNodes > 0 {
		ratio = float64(offNodes) / float64(onNodes)
	}
	fmt.Printf("%-24s%14s%16s\n", "", "wall", "nodes expanded")
	fmt.Printf("%-24s%14v%16d\n", "sharing off", offWall.Round(time.Millisecond), offNodes)
	fmt.Printf("%-24s%14v%16d\n", fmt.Sprintf("sharing on (%d workers)", workers),
		onWall.Round(time.Millisecond), onNodes)
	fmt.Printf("expansion ratio: %.2fx fewer, share rate %.0f%% (%d shares / %d leads / %d bypasses), speedup %.2fx\n",
		ratio, 100*ws.ShareRate(), ws.Shares, ws.Leads, ws.Bypasses, offWall.Seconds()/onWall.Seconds())
	if jsonOut != "" {
		out := singleFlightJSON{
			Network: spec.Name, Nodes: spec.Nodes, Edges: spec.Edges,
			Queries: queries, HotPointSets: hotSets, Workers: workers,
			OffSeconds: offWall.Seconds(), OnSeconds: onWall.Seconds(),
			OffNodesExpanded: offNodes, OnNodesExpanded: onNodes,
			ExpansionRatio: ratio, ShareRate: ws.ShareRate(),
			Leads: ws.Leads, Shares: ws.Shares, Bypasses: ws.Bypasses,
			Speedup: offWall.Seconds() / onWall.Seconds(),
		}
		if err := writeJSON(jsonOut, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
