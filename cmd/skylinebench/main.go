// Command skylinebench regenerates the paper's evaluation figures
// (Section 6) at full paper scale, printing one table per figure in the
// same layout as the published plots.
//
// Usage:
//
//	skylinebench                  # everything (takes a while at scale 1)
//	skylinebench -fig 4a          # just Figure 4(a)
//	skylinebench -fig 5 -trials 3 # Figures 5(a)-(c) with 3 query sets
//	skylinebench -scale 0.2       # all figures on 20%-size networks
//	skylinebench -fig ablations   # the design-choice ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"roadskyline/internal/experiments"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to run: 4a 4b 4c 5 6q 6w ablations all")
		scale  = flag.Float64("scale", 1.0, "network size scale (1 = paper scale)")
		trials = flag.Int("trials", 10, "query sets averaged per setting (paper: 10)")
		seed   = flag.Int64("seed", 2007, "random seed")
		quickQ = flag.Bool("quick", false, "use the reduced Quick configuration")
		csv    = flag.Bool("csv", false, "emit tables as CSV")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quickQ {
		cfg = experiments.Quick()
	}
	cfg.Scale = *scale
	cfg.Trials = *trials
	cfg.Seed = *seed
	if *quickQ && !flagSet("scale") {
		cfg.Scale = experiments.Quick().Scale
	}
	if *quickQ && !flagSet("trials") {
		cfg.Trials = experiments.Quick().Trials
	}
	lab := experiments.NewLab(cfg)

	fmt.Printf("reproducing ICDE'07 multi-source road-network skyline figures "+
		"(scale=%.2f, trials=%d, seed=%d)\n\n", cfg.Scale, cfg.Trials, cfg.Seed)

	start := time.Now()
	want := strings.ToLower(*fig)
	ran := false
	show := func(t experiments.Table) {
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", t.Figure, t.Title, t.CSV())
			return
		}
		fmt.Println(t)
	}
	run1 := func(name string, f func() (experiments.Table, error)) {
		if want != "all" && want != name {
			return
		}
		ran = true
		tab, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: %s: %v\n", name, err)
			os.Exit(1)
		}
		show(tab)
	}
	run3 := func(name string, f func() ([3]experiments.Table, error)) {
		if want != "all" && want != name {
			return
		}
		ran = true
		tabs, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skylinebench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tabs {
			show(t)
		}
	}

	run1("4a", lab.Fig4a)
	run1("4b", lab.Fig4b)
	run1("4c", lab.Fig4c)
	run3("5", lab.Fig5)
	run3("6q", lab.Fig6Q)
	run3("6w", lab.Fig6W)
	if want == "all" || want == "ablations" {
		ran = true
		for _, f := range []func() (experiments.Table, error){
			lab.AblationPLB, lab.AblationAStar, lab.AblationClustering, lab.AblationBuffer,
		} {
			tab, err := f()
			if err != nil {
				fmt.Fprintf(os.Stderr, "skylinebench: ablation: %v\n", err)
				os.Exit(1)
			}
			show(tab)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "skylinebench: unknown figure %q (want 4a 4b 4c 5 6q 6w ablations all)\n", *fig)
		os.Exit(2)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
