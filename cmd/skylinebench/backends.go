package main

import (
	"fmt"
	"os"
	"time"

	"roadskyline"
)

// backendEntry is one storage tier's run of the -backends workload.
type backendEntry struct {
	// Backend is the tier that actually served the run ("mem", "file" or
	// "mmap" — mmap falls back to file on hosts without mapping support).
	Backend      string  `json:"backend"`
	Seconds      float64 `json:"seconds"`
	QPS          float64 `json:"qps"`
	NetworkPages int64   `json:"network_pages"`
	NetworkGets  int64   `json:"network_gets"`
}

// backendsJSON is -json's document for the -backends storage-tier bench.
type backendsJSON struct {
	Network string         `json:"network"`
	Nodes   int            `json:"nodes"`
	Edges   int            `json:"edges"`
	Queries int            `json:"queries"`
	Entries []backendEntry `json:"entries"`
}

// backendsBench compares the storage tiers on identical work: the same
// mixed CE/EDC/LBC workload answered by an in-memory engine, by the
// read-only file backend and by the mmap backend, the latter two opened
// from one prebuilt network directory. The paper's "disk pages accessed"
// metric may not depend on which tier serves the bytes, so the run fails
// if any backend's Gets/Misses counters or skyline sizes diverge; what
// remains is the wall-time cost of each tier's data path.
func backendsBench(scale float64, queries int, seed int64, landmarks int, jsonOut string) error {
	if queries < 1 {
		return fmt.Errorf("-queries must be at least 1 (got %d)", queries)
	}
	spec := scaleSpec(roadskyline.CA, scale, seed)
	n, err := roadskyline.Generate(spec)
	if err != nil {
		return err
	}
	objs := n.GenerateObjects(0.5, 0, seed)
	base := roadskyline.EngineConfig{Landmarks: landmarks, NoLandmarks: landmarks < 0}

	memEng, err := roadskyline.NewEngine(n, objs, base)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "skylinebench-backends-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	buildCfg := base
	buildCfg.DiskDir = dir
	fileEng, err := roadskyline.NewEngine(n, objs, buildCfg)
	if err != nil {
		return fmt.Errorf("build %s: %w", dir, err)
	}
	defer fileEng.Close()
	openCfg := base
	openCfg.Backend = roadskyline.BackendMmap
	mmapEng, err := roadskyline.OpenEngine(dir, openCfg)
	if err != nil {
		return fmt.Errorf("reopen %s: %w", dir, err)
	}
	defer mmapEng.Close()

	algs := []roadskyline.Algorithm{roadskyline.CEAlg, roadskyline.EDCAlg, roadskyline.LBCAlg}
	work := make([]roadskyline.Query, queries)
	for i := range work {
		work[i] = roadskyline.Query{
			Points:    n.GenerateQueryPoints(4, 0.1, seed+int64(i)),
			Algorithm: algs[i%len(algs)],
		}
	}

	run := func(eng *roadskyline.Engine) (backendEntry, error) {
		e := backendEntry{Backend: eng.StorageBackend().String()}
		start := time.Now()
		for i, q := range work {
			res, err := eng.Skyline(q)
			if err != nil {
				return e, fmt.Errorf("%s query %d: %w", e.Backend, i, err)
			}
			e.NetworkPages += res.Stats.NetworkPages
			e.NetworkGets += res.Stats.NetworkGets
		}
		e.Seconds = time.Since(start).Seconds()
		e.QPS = float64(queries) / e.Seconds
		return e, nil
	}

	fmt.Printf("storage-backend comparison on %s (%d nodes, %d edges), %d queries each\n",
		spec.Name, spec.Nodes, spec.Edges, queries)
	out := backendsJSON{Network: spec.Name, Nodes: spec.Nodes, Edges: spec.Edges, Queries: queries}
	fmt.Printf("%-10s%14s%12s%14s%14s\n", "backend", "wall", "queries/s", "pages", "gets")
	for _, eng := range []*roadskyline.Engine{memEng, fileEng, mmapEng} {
		e, err := run(eng)
		if err != nil {
			return err
		}
		out.Entries = append(out.Entries, e)
		fmt.Printf("%-10s%14v%12.1f%14d%14d\n", e.Backend,
			time.Duration(e.Seconds*float64(time.Second)).Round(time.Millisecond),
			e.QPS, e.NetworkPages, e.NetworkGets)
	}
	want := out.Entries[0]
	for _, e := range out.Entries[1:] {
		if e.NetworkPages != want.NetworkPages || e.NetworkGets != want.NetworkGets {
			return fmt.Errorf("backend %s diverged: pages=%d gets=%d, %s had pages=%d gets=%d",
				e.Backend, e.NetworkPages, e.NetworkGets, want.Backend, want.NetworkPages, want.NetworkGets)
		}
	}
	fmt.Printf("counters identical across backends (pages=%d, gets=%d)\n", want.NetworkPages, want.NetworkGets)
	if jsonOut != "" {
		if err := writeJSON(jsonOut, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}
